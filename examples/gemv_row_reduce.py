"""GEMV on a wafer row: the paper's motivating 1D Reduce workload.

Section 3 singles out the 1D case as "important in its own right for
applications such as GEMV".  We implement the standard wafer mapping for
``y = A @ x`` with ``A`` split into column blocks:

* PE ``i`` holds the column block ``A[:, i*k : (i+1)*k]`` and the matching
  slice of ``x``;
* each PE computes its local partial product ``A_i @ x_i`` (an ``m``-
  vector);
* a 1D Reduce sums the partial products into the result vector at PE 0.

The collective is the *entire* communication cost of the GEMV, so the
algorithm choice (Figure 1's regimes) directly sets the kernel's speed.
We sweep output heights ``m`` and show how the planner's choice shifts
from low-depth patterns (small m = small B) to the pipelined chain
family (large m), with the Auto-Gen tree tracking the best throughout.

Usage::

    python examples/gemv_row_reduce.py
"""

import numpy as np

from repro import CS2, wse
from repro.core.planner import best_reduce_1d

P = 32          # PEs in the row
N_COLS = 256    # matrix width (8 columns per PE)


def wafer_gemv(a: np.ndarray, x: np.ndarray, algorithm: str = "auto"):
    """Compute ``a @ x`` with per-PE partial products + wafer Reduce."""
    m, n = a.shape
    cols_per_pe = n // P
    partials = np.empty((P, m))
    for pe in range(P):
        lo, hi = pe * cols_per_pe, (pe + 1) * cols_per_pe
        partials[pe] = a[:, lo:hi] @ x[lo:hi]
    out = wse.reduce(partials, algorithm=algorithm)
    return out.result, out


def main() -> None:
    rng = np.random.default_rng(42)
    print(f"GEMV y = A x on a {P}-PE row, {N_COLS} columns "
          f"({N_COLS // P} per PE)\n")
    print(f"{'m':>6} {'B bytes':>8} {'planner':>10} {'cycles':>8} "
          f"{'us':>7}  model ranking (best 3)")
    for m in [4, 16, 64, 256, 1024]:
        a = rng.normal(size=(m, N_COLS))
        x = rng.normal(size=N_COLS)
        y, out = wafer_gemv(a, x)
        assert np.allclose(y, a @ x), "wafer GEMV disagrees with NumPy"
        choice = best_reduce_1d(P, m)
        top3 = ", ".join(
            f"{k}={v:.0f}" for k, v in list(choice.candidates.items())[:3]
        )
        print(f"{m:>6} {m * 4:>8} {out.algorithm:>10} "
              f"{out.measured_cycles:>8} "
              f"{CS2.cycles_to_us(out.measured_cycles):>7.3f}  {top3}")

    # The vendor chain vs the planner's pick at a small output height —
    # exactly the regime the paper says the vendor library mishandles.
    m = 16
    a = rng.normal(size=(m, N_COLS))
    x = rng.normal(size=N_COLS)
    _, vendor = wafer_gemv(a, x, algorithm="chain")
    _, auto = wafer_gemv(a, x, algorithm="auto")
    print(f"\nm={m}: vendor chain {vendor.measured_cycles} cycles, "
          f"planner ({auto.algorithm}) {auto.measured_cycles} cycles "
          f"-> {vendor.measured_cycles / auto.measured_cycles:.2f}x speedup")


if __name__ == "__main__":
    main()
