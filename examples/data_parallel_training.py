"""Data-parallel training step: gradient AllReduce on a 2D PE grid.

The WSE's flagship workload is neural-network training (Section 1); the
communication kernel of data parallelism is an AllReduce of the gradient
across all workers.  This example runs synchronous SGD on a least-squares
model with the gradient averaged by a *wafer AllReduce* each step, and
compares the vendor X-Y Chain against the planner's choice — the gap is
the end-to-end impact of the paper's contribution on a real training
loop.

Usage::

    python examples/data_parallel_training.py
"""

import numpy as np

from repro import CS2, wse

GRID = (32, 32)        # 1024 workers
FEATURES = 16          # model size = AllReduce vector length B
SAMPLES_PER_PE = 8
STEPS = 15
LR = 0.2


def make_problem(rng):
    """Per-worker datasets for a shared linear regression problem."""
    true_w = rng.normal(size=FEATURES)
    shards = []
    for _ in range(GRID[0] * GRID[1]):
        x = rng.normal(size=(SAMPLES_PER_PE, FEATURES))
        y = x @ true_w + 0.01 * rng.normal(size=SAMPLES_PER_PE)
        shards.append((x, y))
    return true_w, shards


def local_gradient(w, shard):
    x, y = shard
    residual = x @ w - y
    return x.T @ residual / len(y)


def train(algorithm: str, rng_seed: int = 0):
    rng = np.random.default_rng(rng_seed)
    true_w, shards = make_problem(rng)
    w = np.zeros(FEATURES)
    total_cycles = 0
    n_workers = GRID[0] * GRID[1]
    for step in range(STEPS):
        grads = np.stack([local_gradient(w, s) for s in shards])
        grads = grads.reshape(GRID[0], GRID[1], FEATURES)
        out = wse.allreduce(grads, algorithm=algorithm)
        mean_grad = out.result[0, 0] / n_workers
        # Every worker holds the identical summed gradient.
        assert np.allclose(out.result, out.result[0, 0])
        w = w - LR * mean_grad
        total_cycles += out.measured_cycles
    error = float(np.linalg.norm(w - true_w) / np.linalg.norm(true_w))
    return w, error, total_cycles, out.algorithm


def main() -> None:
    print(f"Synchronous SGD on a {GRID[0]}x{GRID[1]} wafer grid, "
          f"{FEATURES}-parameter model, {STEPS} steps\n")
    results = {}
    for alg in ["chain", "tree", "two_phase", "autogen", "auto"]:
        w, err, cycles, resolved = train(alg)
        label = f"{alg} -> {resolved}" if alg == "auto" else alg
        results[alg] = cycles
        print(f"  {label:20s} comm = {cycles:7d} cycles "
              f"({CS2.cycles_to_us(cycles):7.3f} us)   "
              f"weight error after training: {err:.2e}")

    vendor = results["chain"]
    best = min(results.values())
    print(f"\nCommunication speedup over the vendor X-Y Chain AllReduce: "
          f"{vendor / best:.2f}x")
    print("(The paper reports up to 2.54x for 2D AllReduce on the full "
          "512x512 wafer.)")


if __name__ == "__main__":
    main()
