"""Data-parallel training step: gradient AllReduce on a 2D PE grid.

The WSE's flagship workload is neural-network training (Section 1); the
communication kernel of data parallelism is an AllReduce of the gradient
across all workers.  This example runs synchronous SGD on a least-squares
model with the gradient averaged by a *wafer AllReduce* each step, and
compares the vendor X-Y Chain against the planner's choice — the gap is
the end-to-end impact of the paper's contribution on a real training
loop.

All algorithm variants train side by side, and each step's AllReduces
are submitted as *one* batch to a persistent :class:`EngineSession`: the
specs are identical across steps, so every algorithm is planned exactly
once for the whole run (the one-plan-many-executes contract), and the
session keeps one warm worker pool across all training steps instead of
paying pool startup per step (``stats.cold_starts`` vs
``stats.pool_reuses`` shows the amortization).

Usage::

    python examples/data_parallel_training.py
"""

import numpy as np

from repro import CS2, CollectiveSpec, Grid, wse
from repro.engine import EngineSession

GRID = (32, 32)        # 1024 workers
FEATURES = 16          # model size = AllReduce vector length B
SAMPLES_PER_PE = 8
STEPS = 15
LR = 0.2
ALGORITHMS = ["chain", "tree", "two_phase", "autogen", "auto"]


def make_problem(rng):
    """Per-worker datasets for a shared linear regression problem."""
    true_w = rng.normal(size=FEATURES)
    shards = []
    for _ in range(GRID[0] * GRID[1]):
        x = rng.normal(size=(SAMPLES_PER_PE, FEATURES))
        y = x @ true_w + 0.01 * rng.normal(size=SAMPLES_PER_PE)
        shards.append((x, y))
    return true_w, shards


def local_gradient(w, shard):
    x, y = shard
    residual = x @ w - y
    return x.T @ residual / len(y)


def train_all(engine: EngineSession, rng_seed: int = 0):
    """Train one weight vector per algorithm, batching each step's
    AllReduces through a persistent engine session."""
    rng = np.random.default_rng(rng_seed)
    true_w, shards = make_problem(rng)
    grid = Grid(*GRID)
    specs = [
        CollectiveSpec("allreduce", grid, FEATURES, algorithm=alg)
        for alg in ALGORITHMS
    ]
    weights = {alg: np.zeros(FEATURES) for alg in ALGORITHMS}
    cycles = {alg: 0 for alg in ALGORITHMS}
    resolved = {alg: alg for alg in ALGORITHMS}
    n_workers = GRID[0] * GRID[1]
    for step in range(STEPS):
        datas = []
        for alg in ALGORITHMS:
            grads = np.stack(
                [local_gradient(weights[alg], s) for s in shards]
            )
            datas.append(grads.reshape(GRID[0], GRID[1], FEATURES))
        outs = engine.sweep(specs, datas)   # one batch per training step
        for alg, out in zip(ALGORITHMS, outs):
            mean_grad = out.result[0, 0] / n_workers
            # Every worker holds the identical summed gradient.
            assert np.allclose(out.result, out.result[0, 0])
            weights[alg] = weights[alg] - LR * mean_grad
            cycles[alg] += out.measured_cycles
            resolved[alg] = out.algorithm
    errors = {
        alg: float(np.linalg.norm(w - true_w) / np.linalg.norm(true_w))
        for alg, w in weights.items()
    }
    return errors, cycles, resolved


def main() -> None:
    print(f"Synchronous SGD on a {GRID[0]}x{GRID[1]} wafer grid, "
          f"{FEATURES}-parameter model, {STEPS} steps\n")
    with EngineSession() as session:
        errors, cycles, resolved = train_all(session)
    for alg in ALGORITHMS:
        label = f"{alg} -> {resolved[alg]}" if alg == "auto" else alg
        print(f"  {label:20s} comm = {cycles[alg]:7d} cycles "
              f"({CS2.cycles_to_us(cycles[alg]):7.3f} us)   "
              f"weight error after training: {errors[alg]:.2e}")

    vendor = cycles["chain"]
    best = min(cycles.values())
    print(f"\nCommunication speedup over the vendor X-Y Chain AllReduce: "
          f"{vendor / best:.2f}x")
    print("(The paper reports up to 2.54x for 2D AllReduce on the full "
          "512x512 wafer.)")

    stats = session.stats
    info = wse.cache_info()
    print(f"\nsweep engine: {stats.points} AllReduces in {stats.sweeps} "
          f"batches, wall = {stats.wall_time:.2f}s; plan cache: "
          f"{info['misses']} misses for {stats.points} executions; "
          f"pool: {stats.cold_starts} cold starts, "
          f"{stats.pool_reuses} warm reuses")


if __name__ == "__main__":
    main()
