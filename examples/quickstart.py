"""Quickstart: plan, execute and verify wafer-scale collectives.

Runs the three collectives of the paper on the simulated wafer with the
model-driven planner choosing the algorithm, and prints measured vs
predicted cycles (the paper's Figure 11 presentation in miniature).

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import CS2, Grid, wse


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1D Reduce on a 64-PE row, 256-element vectors -------------------
    data = rng.normal(size=(64, 256))
    out = wse.reduce(data)  # algorithm="auto": the model picks
    assert np.allclose(out.result, data.sum(axis=0))
    print("1D Reduce (64 PEs, B=256):")
    print(f"  planner chose      : {out.algorithm}")
    print(f"  predicted cycles   : {out.predicted_cycles:.0f}"
          f"  ({CS2.cycles_to_us(out.predicted_cycles):.3f} us)")
    print(f"  measured cycles    : {out.measured_cycles}"
          f"  ({CS2.cycles_to_us(out.measured_cycles):.3f} us)")
    print(f"  model error        : {out.prediction_error:.1%}")
    ranking = ", ".join(
        f"{k}={v:.0f}" for k, v in out.plan.choice.candidates.items()
    )
    print(f"  full ranking       : {ranking}")

    # --- 1D AllReduce, forcing specific algorithms ------------------------
    print("\n1D AllReduce (32 PEs, B=128), per algorithm:")
    data = rng.normal(size=(32, 128))
    expected = np.broadcast_to(data.sum(axis=0), data.shape)
    for alg in ["star", "chain", "tree", "two_phase", "autogen", "ring"]:
        out = wse.allreduce(data, algorithm=alg)
        assert np.allclose(out.result, expected)
        print(f"  {alg:10s} measured={out.measured_cycles:6d}"
              f"  predicted={out.predicted_cycles:8.0f}"
              f"  error={out.prediction_error:5.1%}")

    # --- 2D Reduce + Broadcast on a grid ----------------------------------
    grid_data = rng.normal(size=(8, 8, 64))
    out = wse.reduce(grid_data)
    assert np.allclose(out.result, grid_data.sum(axis=(0, 1)))
    print(f"\n2D Reduce (8x8 grid, B=64): planner chose {out.algorithm}, "
          f"{out.measured_cycles} cycles")

    vec = rng.normal(size=64)
    out = wse.broadcast(vec, Grid(8, 8))
    assert np.allclose(out.result, np.broadcast_to(vec, (8, 8, 64)))
    print(f"2D Broadcast (8x8 grid, B=64): {out.measured_cycles} cycles "
          f"(predicted {out.predicted_cycles:.0f}) — depth-1 flooding")


if __name__ == "__main__":
    main()
