"""Auto-Gen explorer: inspect the generated reduction trees and code.

The paper's Section 5.5 pipeline in one script: for a given row size and
vector length, run the DP + hybrid search, print the winning pre-order
tree with its cost terms, emit the pseudo-CSL for a few PEs, execute the
tree on the cycle simulator, and compare it against every fixed pattern
and the Lemma 5.5 lower bound.

Usage::

    python examples/autogen_explorer.py [P] [B_wavelets]
"""

import sys

import numpy as np

from repro.autogen.hybrid import best_reduce_tree, fixed_tree_candidates
from repro.codegen import emit_pe_source
from repro.collectives import reduce_1d_schedule, schedule_tree_reduce
from repro.fabric import row_grid, simulate
from repro.model.lower_bound import reduce_lower_bound_time
from repro.validation import random_inputs


def render_tree(tree) -> str:
    """ASCII rendering of the pre-order tree, one vertex per line."""
    depths = tree.depths()
    lines = []
    for v in range(tree.p):
        kids = tree.children[v]
        arrow = f" -> children {kids}" if kids else " (leaf)"
        lines.append("  " * int(depths[v]) + f"PE {v}{arrow}")
    return "\n".join(lines)


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    b = int(sys.argv[2]) if len(sys.argv) > 2 else 64

    best = best_reduce_tree(p, b)
    tree = best.tree
    print(f"Auto-Gen search for P={p}, B={b} wavelets")
    print(f"  winner   : {best.source} candidate, predicted {best.time:.0f} cycles")
    print(f"  tree     : {tree.describe()}")
    print(f"  lower bnd: {reduce_lower_bound_time(p, b):.0f} cycles "
          f"(ratio {best.time / reduce_lower_bound_time(p, b):.2f})")
    print("\nReduction tree (indentation = tree depth):")
    print(render_tree(tree))

    # Generated code for the root, one internal vertex, one leaf.
    grid = row_grid(p)
    sched = schedule_tree_reduce(grid, tree, list(range(p)), b,
                                 name=f"autogen-{p}x{b}")
    internal = next(
        (v for v in range(1, p) if tree.children[v]), min(p - 1, 1)
    )
    print("\n--- generated pseudo-CSL -------------------------------------")
    for pe in {0, internal, p - 1}:
        print(emit_pe_source(sched, pe))

    # Execute and compare against the fixed patterns.
    inputs = random_inputs(p, b, seed=1)
    expected = np.sum(list(inputs.values()), axis=0)
    print("--- simulator shoot-out ---------------------------------------")
    print(f"{'pattern':>10} {'measured':>9} {'predicted':>10}")
    sim = simulate(sched, inputs={k: v.copy() for k, v in inputs.items()})
    assert np.allclose(sim.buffers[0][:b], expected)
    print(f"{'autogen':>10} {sim.cycles:>9} {best.time:>10.0f}")
    for name, cand in fixed_tree_candidates(p).items():
        fixed_sched = reduce_1d_schedule(grid, name, b)
        fsim = simulate(
            fixed_sched, inputs={k: v.copy() for k, v in inputs.items()}
        )
        assert np.allclose(fsim.buffers[0][:b], expected)
        print(f"{name:>10} {fsim.cycles:>9} {cand.model_time(b):>10.0f}")


if __name__ == "__main__":
    main()
