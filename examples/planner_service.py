"""Planner-as-a-service tour: boot, plan, coalesce, verify, inspect.

Boots a planner service on an ephemeral port *inside this process*
(``serve_in_thread`` — the same server ``python -m repro.service``
runs), then walks the client surface:

1. ``/plan`` twice — the first request plans, the second is a cache hit;
2. a 16-thread herd of identical ``/plan`` requests — single-flight
   coalescing means the planner still runs only once (the
   ``service.coalesced`` counter shows who shared the flight);
3. a seeded ``/sweep`` — and a check that the service's result is
   bit-identical to executing the very same spec through the library;
4. ``/stats`` — the request counters and latency histograms the
   service kept while we did all that.
"""

import threading

import numpy as np

from repro.core.api import execute, plan
from repro.core.cache import PLAN_CACHE
from repro.service import (
    ServiceClient,
    ServiceConfig,
    SpecRequest,
    SweepItem,
    seeded_input,
    serve_in_thread,
)


def main() -> None:
    config = ServiceConfig(port=0, db="-", sweep_workers=1, max_inflight=32)
    with serve_in_thread(config=config) as (_, host, port):
        client = ServiceClient(host, port)
        print(f"service up at http://{host}:{port}")

        # 1. plan: miss, then cached hit ---------------------------------
        spec = SpecRequest(kind="reduce", rows=1, cols=32, b=128)
        first = client.plan(spec)
        second = client.plan(spec)
        print(f"planned {spec.kind} on 1x{spec.cols}, B={spec.b}: "
              f"{first.algorithm} ({first.predicted_cycles:.0f} cycles "
              f"predicted)")
        print(f"  first request cached={first.cached}, "
              f"second cached={second.cached}")

        # 2. a herd of identical requests coalesces ----------------------
        herd_spec = SpecRequest(kind="allreduce", rows=1, cols=32, b=512)
        PLAN_CACHE.clear()
        barrier = threading.Barrier(16)
        responses = []
        lock = threading.Lock()

        def rush():
            c = ServiceClient(host, port, timeout=30)
            barrier.wait()
            response = c.plan(herd_spec)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=rush) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        coalesced = sum(1 for r in responses if r.coalesced)
        fresh = sum(1 for r in responses if not r.cached and not r.coalesced)
        print(f"herd of {len(responses)} identical plan requests: "
              f"{fresh} planned, {coalesced} coalesced onto its flight, "
              f"{len(responses) - fresh - coalesced} cache hits")

        # 3. sweep through the service == execute in-process -------------
        swept = client.sweep([SweepItem(spec=spec, seed=7)],
                             return_results=True)
        outcome = swept.outcomes[0]
        local = execute(plan(spec.to_spec()), seeded_input(spec.to_spec(), 7))
        identical = (
            outcome.measured_cycles == local.measured_cycles
            and np.array_equal(outcome.result_array(),
                               np.asarray(local.result))
        )
        print(f"sweep via service: {outcome.measured_cycles} cycles on "
              f"{outcome.backend}; bit-identical to library: {identical}")

        # 4. what the service observed -----------------------------------
        stats = client.stats()
        print("service counters:")
        for key in sorted(stats.metrics):
            if key.startswith("service.requests"):
                print(f"  {key} = {stats.metrics[key]:.0f}")
    print("service shut down cleanly")


if __name__ == "__main__":
    main()
