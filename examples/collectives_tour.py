"""Tour of the full collectives suite, with execution-trace visuals.

Beyond the paper's Reduce/AllReduce/Broadcast, the library provides the
data-movement collectives a real deployment needs (Gather, Scatter,
AllGather, ReduceScatter), the butterfly AllReduce the paper only
predicts, and the middle-root optimization of §6.1.  The whole suite is
expressed as one batch of ``CollectiveSpec``s and executed through a
persistent ``EngineSession`` — one plan per distinct spec, simulations
fanned out by one warm worker pool — then checked against NumPy.
Finally the two-phase
Reduce's execution timeline is rendered: the ASCII picture makes the
pattern's two chained phases directly visible.

Usage::

    python examples/collectives_tour.py
"""

import numpy as np

from repro import CollectiveSpec, Grid
from repro.collectives import (
    butterfly_allreduce_schedule,
    middle_root_allreduce_schedule,
    reduce_1d_schedule,
)
from repro.engine import EngineSession
from repro.fabric import Tracer, link_utilization, render_timeline, row_grid, simulate

P, B = 16, 32


def main() -> None:
    rng = np.random.default_rng(7)
    data = rng.normal(size=(P, B))
    total = data.sum(axis=0)

    print(f"collectives on a {P}-PE row, B = {B} wavelets\n")
    rows = []

    # The whole tour as one batched sweep: specs in, outcomes out.
    grid_1d = Grid(1, P)
    tour = [
        ("reduce (auto)", CollectiveSpec("reduce", grid_1d, B)),
        ("allreduce (auto)", CollectiveSpec("allreduce", grid_1d, B)),
        ("gather", CollectiveSpec("gather", grid_1d, B)),
        ("scatter", CollectiveSpec("scatter", grid_1d, B)),
        ("allgather", CollectiveSpec("allgather", grid_1d, B)),
        ("reduce_scatter", CollectiveSpec("reduce_scatter", grid_1d, B)),
    ]
    with EngineSession() as session:
        outs = session.sweep([spec for _, spec in tour], [data] * len(tour))
    by_label = dict(zip([label for label, _ in tour], outs))

    out = by_label["reduce (auto)"]
    assert np.allclose(out.result, total)
    rows.append(("reduce (auto)", out.algorithm, out.measured_cycles))

    out = by_label["allreduce (auto)"]
    assert np.allclose(out.result, np.broadcast_to(total, data.shape))
    rows.append(("allreduce (auto)", out.algorithm, out.measured_cycles))

    out = by_label["gather"]
    assert np.allclose(out.result, data)
    rows.append(("gather", "star-store", out.measured_cycles))

    out = by_label["scatter"]
    assert np.allclose(out.result, data)
    rows.append(("scatter", "reverse-star", out.measured_cycles))

    out = by_label["allgather"]
    assert all(np.allclose(out.result[i], data) for i in range(P))
    rows.append(("allgather", "ring", out.measured_cycles))

    out = by_label["reduce_scatter"]
    assert np.allclose(out.result.reshape(-1), total)
    rows.append(("reduce_scatter", "ring", out.measured_cycles))

    # Extensions beyond the public wse API: butterfly and middle-root.
    grid = row_grid(P)
    inputs = {pe: data[pe].copy() for pe in range(P)}
    sim = simulate(butterfly_allreduce_schedule(grid, B), inputs=dict(inputs))
    assert np.allclose(sim.buffers[0][:B], total)
    rows.append(("allreduce (butterfly)", "halving/doubling", sim.cycles))

    sim = simulate(
        middle_root_allreduce_schedule(grid, "two_phase", B),
        inputs={k: v.copy() for k, v in inputs.items()},
    )
    assert np.allclose(sim.buffers[0][:B], total)
    rows.append(("allreduce (middle root)", "two_phase x2", sim.cycles))

    width = max(len(r[0]) for r in rows)
    for name, alg, cycles in rows:
        print(f"  {name:<{width}}  {alg:<18} {cycles:>6} cycles")

    stats = session.stats
    print(f"\nsweep engine: {stats.points} points over "
          f"{stats.distinct_specs} distinct specs, "
          f"workers = {stats.workers}, wall = {stats.wall_time:.3f}s")
    print(f"  robustness: {stats.retries} retries, {stats.timeouts} timeouts, "
          f"{stats.requeued_chunks} requeued, "
          f"{stats.pool_replacements} pool replacements, "
          f"{stats.quarantined} quarantined"
          + (" [degraded to serial]" if stats.degraded else ""))

    # --- execution trace of the two-phase reduce ---------------------------
    print("\nTwo-Phase Reduce execution timeline "
          "(watch the group chains feed the leader chain):\n")
    tracer = Tracer()
    sched = reduce_1d_schedule(grid, "two_phase", B)
    sim = simulate(
        sched, inputs={k: v.copy() for k, v in inputs.items()}, tracer=tracer
    )
    print(render_timeline(tracer, grid))
    print()
    print(link_utilization(tracer, grid))


if __name__ == "__main__":
    main()
