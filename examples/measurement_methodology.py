"""Section 8.3 demo: timing a collective on a machine without a shared clock.

Walks through the paper's measurement methodology on the simulator, where
we can *cheat* and look at the true global clock to verify the procedure:

1. every PE gets a private clock offset and a thermal write-noise factor;
2. PE (0,0) floods a trigger; each PE samples its reference clock, waits
   ``alpha * (M + N - i - j)`` writes, samples its start clock, runs the
   collective, samples its end clock;
3. samples are de-skewed; the wait parameter ``alpha`` is re-fitted until
   the calibrated start spread is small;
4. the reported runtime is ``max T_E' - min T_S'``.

The cross-check against the perfect-global-clock simulation runs through
the ``wse`` plan/execute pipeline, and the final section prints
``wse.cache_info()`` — the calibration loop re-simulates the same
schedule many times, so the plan cache should show exactly one miss.

Usage::

    python examples/measurement_methodology.py
"""

import numpy as np

from repro import CollectiveSpec, wse
from repro.collectives import reduce_1d_schedule
from repro.fabric import row_grid
from repro.timing import ClockModel, calibrate, run_instrumented
from repro.validation import random_inputs

P = 64
B = 64


def main() -> None:
    grid = row_grid(P)
    collective = reduce_1d_schedule(grid, "two_phase", B)
    inputs = random_inputs(P, B, seed=0)

    # A wafer with +-200-cycle clock skew and ~20% thermal slowdown.
    clock = ClockModel(grid, offset_std=200.0, thermal_mean=1.2,
                       thermal_std=0.03, seed=11)
    offs = list(clock.offsets.values())
    print(f"simulated wafer: clock offsets in [{min(offs)}, {max(offs)}] "
          f"cycles, write slowdown ~{clock.noise.mean():.2f}x\n")

    # Naive attempt: ideal-system wait parameter alpha = 1.
    naive = run_instrumented(grid, collective, 1.0, clock, inputs=inputs)
    print(f"alpha = 1.0 (ideal-system assumption):")
    print(f"  calibrated start spread : {naive.start_spread:.0f} cycles")
    print(f"  true start spread       : {naive.true_start_spread} cycles "
          f"(simulator ground truth)\n")

    # The calibration loop re-fits alpha from the residual slope.
    cal = calibrate(grid, collective, clock, inputs=inputs, target_spread=10.0)
    print("calibration iterations (alpha -> spread):")
    for alpha, spread in cal.history:
        print(f"  alpha = {alpha:.4f} -> spread = {spread:.0f} cycles")
    print(f"\nconverged: alpha = {cal.alpha:.4f} "
          f"(1/thermal = {1 / clock.noise.mean():.4f}), "
          f"spread = {cal.start_spread:.0f} cycles "
          f"(paper: < 57 for 1D rows)")

    run = cal.final_run
    measured = run.runtime
    spec = CollectiveSpec("reduce", grid, B, algorithm="two_phase")
    stacked = np.stack([inputs[pe] for pe in range(P)])
    direct = wse.execute(wse.plan(spec), stacked).measured_cycles
    print(f"\nmeasured runtime (max T_E' - min T_S'): {measured:.0f} cycles")
    print(f"direct simulation (perfect global clock): {direct} cycles")
    print(f"instrumentation overhead: "
          f"{(measured - direct) / direct:+.1%}")

    # Observability: repeated plans of the same spec hit the cache.
    wse.plan(spec)
    info = wse.cache_info()
    print(f"\nplan cache: {info['size']} plan(s), "
          f"{info['hits']} hit(s), {info['misses']} miss(es) "
          f"(one miss per distinct spec, however often it runs)")


if __name__ == "__main__":
    main()
